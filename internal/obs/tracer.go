package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DefaultTraceCap is the default ring capacity: enough for a short gated run
// without unbounded growth on long ones.
const DefaultTraceCap = 1 << 17

// Tracer is a bounded ring buffer of events. When full, the oldest events
// are dropped (the tail of a run is usually what a timeline viewer needs);
// Dropped reports how many fell off.
type Tracer struct {
	events []Event
	cap    int
	next   int    // ring write position
	total  uint64 // events ever emitted
}

// NewTracer builds a tracer holding at most capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Emit implements Sink.
func (t *Tracer) Emit(e Event) {
	t.total++
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		t.next = len(t.events) % t.cap
		return
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % t.cap
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if len(t.events) < t.cap {
		return append([]Event(nil), t.events...)
	}
	out := make([]Event, 0, t.cap)
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Total returns how many events were ever emitted.
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many events fell off the ring.
func (t *Tracer) Dropped() uint64 { return t.total - uint64(len(t.events)) }

// traceEvent is one Chrome trace-event JSON object. One simulated cycle is
// exported as one microsecond, so at the paper's 1 GHz clock the viewer's
// "us" axis reads directly as core cycles (and as nanoseconds of real time).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the exported JSON object format (Perfetto and chrome://tracing
// load it directly).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// busKindNames mirrors bus.Kind.String (obs cannot import bus: bus imports
// obs).
var busKindNames = [...]string{"read", "write", "read-meta", "write-meta"}

// stallTidBase gives each stall reason its own lane so B/E pairs never
// interleave across reasons.
const stallTidBase = 100

// spanDur is the duration of a [start, end] span, clamped to 0 when the
// recorded end precedes the start. Completion cycles are stamped ahead of
// time; a completion at or before the start cycle must not wrap the uint64
// subtraction into an ~1.8e19 "duration" that corrupts the timeline.
func spanDur(start, end uint64) uint64 {
	if end > start {
		return end - start
	}
	return 0
}

// export converts one simulator event into zero or more trace events.
func export(e Event) []traceEvent {
	tid := int(e.Track)
	hexAddr := fmt.Sprintf("%#x", e.Addr)
	switch e.Kind {
	case EvFetch, EvDispatch, EvIssue, EvCommit:
		return []traceEvent{{Name: e.Kind.String(), Ph: "i", Ts: e.Cycle, Tid: tid,
			Args: map[string]any{"pc": hexAddr}}}
	case EvSquash:
		return []traceEvent{{Name: "squash", Ph: "i", Ts: e.Cycle, Tid: tid,
			Args: map[string]any{"entries": e.A}}}
	case EvStallBegin:
		return []traceEvent{{Name: "stall:" + StallReason(e.A).String(), Ph: "B", Ts: e.Cycle,
			Tid: stallTidBase + int(e.A)}}
	case EvStallEnd:
		return []traceEvent{{Name: "stall:" + StallReason(e.A).String(), Ph: "E", Ts: e.Cycle,
			Tid: stallTidBase + int(e.A)}}
	case EvAuthRequest:
		// The verification span: enqueue → completion.
		return []traceEvent{{Name: "auth-verify", Ph: "X", Ts: e.Cycle, Dur: spanDur(e.Cycle, e.B),
			Tid: int(TrackAuthQueue), Args: map[string]any{"idx": e.A, "line": hexAddr}}}
	case EvAuthComplete:
		out := []traceEvent{{Name: "auth-done", Ph: "i", Ts: e.Cycle, Tid: int(TrackAuthQueue),
			Args: map[string]any{"line": hexAddr}}}
		if e.Cycle > e.B {
			// The realized decrypt→auth gap: plaintext usable but unverified.
			out = append(out, traceEvent{Name: "gap", Ph: "X", Ts: e.B, Dur: e.Cycle - e.B,
				Tid: int(TrackGap), Args: map[string]any{"line": hexAddr}})
		}
		return out
	case EvAuthFail:
		return []traceEvent{{Name: "auth-FAIL", Ph: "i", Ts: e.Cycle, Tid: int(TrackAuthQueue),
			Args: map[string]any{"idx": e.A, "line": hexAddr}}}
	case EvDecryptReady:
		return []traceEvent{{Name: "decrypt-ready", Ph: "i", Ts: e.Cycle, Tid: int(TrackSecmem),
			Args: map[string]any{"line": hexAddr}}}
	case EvSecFetch:
		return []traceEvent{{Name: "sec-fetch", Ph: "i", Ts: e.Cycle, Tid: int(TrackSecmem),
			Args: map[string]any{"line": hexAddr}}}
	case EvWriteBack:
		return []traceEvent{{Name: "writeback", Ph: "i", Ts: e.Cycle, Tid: int(TrackSecmem),
			Args: map[string]any{"line": hexAddr}}}
	case EvFetchGateWait:
		return []traceEvent{{Name: "fetch-gate-wait", Ph: "X", Ts: e.Cycle, Dur: e.A,
			Tid: int(TrackSecmem), Args: map[string]any{"line": hexAddr}}}
	case EvBusTxn:
		name := "bus"
		if e.A < uint64(len(busKindNames)) {
			name = "bus-" + busKindNames[e.A]
		}
		return []traceEvent{{Name: name, Ph: "X", Ts: e.Cycle, Dur: spanDur(e.Cycle, e.B),
			Tid: int(TrackBus), Args: map[string]any{"addr": hexAddr}}}
	case EvCacheHit, EvCacheMiss:
		name := "hit"
		if e.Kind == EvCacheMiss {
			name = "miss"
		}
		return []traceEvent{{Name: name, Ph: "i", Ts: e.Cycle, Tid: tid,
			Args: map[string]any{"addr": hexAddr}}}
	case EvCryptOp:
		name := "encrypt"
		if e.A == 1 {
			name = "decrypt"
		}
		return []traceEvent{{Name: name, Ph: "i", Ts: e.Cycle, Tid: int(TrackCrypto),
			Args: map[string]any{"line": hexAddr}}}
	case EvSkip:
		// One complete ("X") span per fast-forward jump, on its own lane, so
		// the idle windows the fast path elides are visible in the timeline.
		return []traceEvent{{Name: "fast-forward", Ph: "X", Ts: e.Cycle, Dur: e.A,
			Tid:  int(TrackFastForward),
			Args: map[string]any{"cycles": e.A, "bound": SkipBound(e.B).String()}}}
	}
	return nil
}

// WriteJSON exports the retained events as Chrome trace-event JSON, sorted by
// timestamp (events are emitted in simulation order, but completion cycles
// are known — and stamped — ahead of time, so raw emission order is not
// timestamp order). The output loads in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var out []traceEvent
	// Name the component lanes first (metadata sorts to ts 0 anyway).
	for tr := Track(0); tr < numTracks; tr++ {
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", Tid: int(tr),
			Args: map[string]any{"name": tr.String()}})
	}
	for r := StallReason(0); r < NumStallReasons; r++ {
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", Tid: stallTidBase + int(r),
			Args: map[string]any{"name": "stall:" + r.String()}})
	}
	// The skipped-cycles counter track accumulates across the retained
	// events (export itself is stateless): each EvSkip adds a "C" sample of
	// the running total, rendered as a staircase in the viewer.
	var skipped uint64
	for _, e := range t.Events() {
		out = append(out, export(e)...)
		if e.Kind == EvSkip {
			skipped += e.A
			out = append(out, traceEvent{Name: "skipped-cycles", Ph: "C", Ts: e.Cycle,
				Pid: 0, Tid: int(TrackFastForward),
				Args: map[string]any{"cycles": skipped}})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// ValidateTraceJSON checks that data is well-formed trace-event JSON: it
// decodes, carries at least one event, every event has a name and phase, and
// timestamps are monotonically non-decreasing in file order. This is the
// CI-enforced contract of the -trace flag.
func ValidateTraceJSON(data []byte) error {
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   *uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("obs: trace does not decode: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	var last uint64
	for i, e := range f.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return fmt.Errorf("obs: trace event %d missing name or phase", i)
		}
		ts := uint64(0)
		if e.Ts != nil {
			ts = *e.Ts
		}
		if ts < last {
			return fmt.Errorf("obs: trace event %d timestamp %d < previous %d", i, ts, last)
		}
		last = ts
	}
	return nil
}
