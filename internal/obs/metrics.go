package obs

import (
	"fmt"
	"sort"
)

// Counter is a named monotonically increasing count.
type Counter struct {
	Name string
	V    uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.V += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.V++ }

// Histogram is a fixed-bucket histogram of uint64 samples. Bucket i counts
// samples v <= Bounds[i]; one implicit overflow bucket catches the rest.
// Fixed bounds keep observation O(log buckets), snapshots mergeable, and the
// JSON schema stable across runs.
type Histogram struct {
	Name   string
	Bounds []uint64
	Counts []uint64 // len(Bounds)+1; last = overflow
	Sum    uint64
	N      uint64
	Max    uint64
}

// NewHistogram builds a histogram over strictly increasing bounds.
func NewHistogram(name string, bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not increasing at %d", name, i))
		}
	}
	return &Histogram{
		Name:   name,
		Bounds: append([]uint64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	h.Sum += v
	h.N++
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the arithmetic mean of all samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Registry is a deterministic-order collection of counters and histograms.
// Lookups are by name; iteration (and Snapshot) preserve registration order.
type Registry struct {
	counters []*Counter
	hists    []*Histogram
	byName   map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]any{}}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.byName[name]; ok {
		c, ok := v.(*Counter)
		if !ok {
			panic("obs: " + name + " registered as a histogram")
		}
		return c
	}
	c := &Counter{Name: name}
	r.counters = append(r.counters, c)
	r.byName[name] = c
	return c
}

// Histogram returns the named histogram, registering it with the given
// bounds on first use.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if v, ok := r.byName[name]; ok {
		h, ok := v.(*Histogram)
		if !ok {
			panic("obs: " + name + " registered as a counter")
		}
		return h
	}
	h := NewHistogram(name, bounds)
	r.hists = append(r.hists, h)
	r.byName[name] = h
	return h
}

// Snapshot freezes the registry into a serializable, mergeable value.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Histograms: map[string]HistSnapshot{},
	}
	for _, c := range r.counters {
		s.Counters[c.Name] = c.V
	}
	for _, h := range r.hists {
		s.Histograms[h.Name] = HistSnapshot{
			Bounds: append([]uint64(nil), h.Bounds...),
			Counts: append([]uint64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.N,
			Max:    h.Max,
		}
	}
	return s
}

// Snapshot is the JSON-friendly frozen form of a metrics registry; it is
// what harness outcomes and the -json sweep record carry per cell.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is one frozen histogram.
type HistSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
	Max    uint64   `json:"max"`
}

// Mean returns the arithmetic mean of the frozen samples.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile: the bound of the first
// bucket at which the cumulative count reaches q*Count (Max for the overflow
// bucket). q outside (0,1] is clamped.
func (h HistSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) && h.Bounds[i] < h.Max {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// merge folds o into h (bounds must match — they do for same-name metrics
// produced by this package's fixed bucket sets).
func (h *HistSnapshot) merge(o HistSnapshot) error {
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(h.Bounds), len(o.Bounds))
	}
	for i, b := range h.Bounds {
		if o.Bounds[i] != b {
			return fmt.Errorf("obs: merging histograms with different bounds at %d", i)
		}
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
	h.Count += o.Count
	if o.Max > h.Max {
		h.Max = o.Max
	}
	return nil
}

// Merge folds another snapshot into this one: counters add, same-name
// histograms bucket-wise add. Used to aggregate per-cell snapshots into a
// per-scheme summary.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o == nil {
		return nil
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistSnapshot{}
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	for k, v := range o.Histograms {
		cur, ok := s.Histograms[k]
		if !ok {
			s.Histograms[k] = HistSnapshot{
				Bounds: append([]uint64(nil), v.Bounds...),
				Counts: append([]uint64(nil), v.Counts...),
				Sum:    v.Sum, Count: v.Count, Max: v.Max,
			}
			continue
		}
		if err := cur.merge(v); err != nil {
			return fmt.Errorf("%s: %w", k, err)
		}
		s.Histograms[k] = cur
	}
	return nil
}

// SortedCounterNames returns counter names in lexical order (stable
// rendering).
func (s *Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SortedHistogramNames returns histogram names in lexical order.
func (s *Snapshot) SortedHistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
