// Package dram implements a PC-SDRAM timing model in the style of the Gries
// DRAM model the paper integrates (§5.1): banks with open-row (page-mode)
// state, where an access's latency depends on whether it hits the open row,
// misses a closed row, or conflicts with a different open row.
//
// All external latencies are expressed in memory-bus clocks and converted to
// core cycles via the configured clock ratio (the paper's machine: 1 GHz
// core, 200 MHz bus → 5 core cycles per bus clock).
package dram

import "fmt"

// Config describes the SDRAM organization and timing (Table 3 of the paper).
type Config struct {
	Banks      int // independent banks
	RowBytes   int // bytes per row ("page") per bank
	BusClockNs int // memory bus period in ns — informational
	CorePerBus int // core cycles per memory-bus clock
	CASBus     int // CAS latency, bus clocks
	RCDBus     int // RAS-to-CAS delay, bus clocks
	RPBus      int // row precharge, bus clocks
	BusBytes   int // data bus width in bytes per bus clock
}

// Default returns the paper's Table 3 configuration.
func Default() Config {
	return Config{
		Banks:      8,
		RowBytes:   2048,
		BusClockNs: 5,
		CorePerBus: 5,
		CASBus:     20,
		RCDBus:     7,
		RPBus:      7,
		BusBytes:   8,
	}
}

// Kind classifies an access by row-buffer outcome.
type Kind int

// Row-buffer outcomes.
const (
	RowHit      Kind = iota // open row matches
	RowEmpty                // bank precharged, row closed
	RowConflict             // different row open
)

func (k Kind) String() string {
	switch k {
	case RowHit:
		return "row-hit"
	case RowEmpty:
		return "row-empty"
	case RowConflict:
		return "row-conflict"
	}
	return "?"
}

// Stats counts accesses by outcome.
type Stats struct {
	Hits      uint64
	Empties   uint64
	Conflicts uint64
	// BusyCycles accumulates core cycles requests spent queued behind
	// earlier accesses to the same bank.
	BusyCycles uint64
}

type bank struct {
	openRow  int64  // -1 = precharged
	cmdReady uint64 // when the bank can accept its next row/column command
}

// DRAM is the memory-device timing model. Column commands pipeline within a
// bank (a new CAS can issue while the previous burst streams out), banks
// operate independently, and all bursts share one data bus.
type DRAM struct {
	cfg     Config
	banks   []bank
	busFree uint64 // shared DRAM data bus availability
	stats   Stats
}

// New validates cfg and builds the model.
func New(cfg Config) (*DRAM, error) {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 || cfg.CorePerBus <= 0 || cfg.BusBytes <= 0 {
		return nil, fmt.Errorf("dram: non-positive geometry %+v", cfg)
	}
	if cfg.CASBus < 0 || cfg.RCDBus < 0 || cfg.RPBus < 0 {
		return nil, fmt.Errorf("dram: negative timing %+v", cfg)
	}
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *DRAM {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

func (d *DRAM) mapAddr(addr uint64) (bankIdx int, row int64) {
	// Row-interleaved bank mapping: consecutive rows rotate across banks,
	// giving streaming workloads bank-level parallelism.
	rowGlobal := addr / uint64(d.cfg.RowBytes)
	return int(rowGlobal % uint64(d.cfg.Banks)), int64(rowGlobal / uint64(d.cfg.Banks))
}

// Access performs one burst read or write of n bytes at addr starting no
// earlier than core cycle now. It returns the cycle at which the first data
// beat is on the data bus (firstData) and the cycle the burst completes
// (done).
func (d *DRAM) Access(now uint64, addr uint64, n int) (firstData, done uint64) {
	bi, row := d.mapAddr(addr)
	b := &d.banks[bi]
	start := now
	if b.cmdReady > start {
		d.stats.BusyCycles += b.cmdReady - start
		start = b.cmdReady
	}
	cpb := uint64(d.cfg.CorePerBus)
	var rowLat uint64
	switch {
	case b.openRow == row:
		d.stats.Hits++
	case b.openRow == -1:
		d.stats.Empties++
		rowLat = uint64(d.cfg.RCDBus) * cpb
	default:
		d.stats.Conflicts++
		rowLat = uint64(d.cfg.RPBus+d.cfg.RCDBus) * cpb
	}
	b.openRow = row
	casIssue := start + rowLat
	beats := (n + d.cfg.BusBytes - 1) / d.cfg.BusBytes
	if beats < 1 {
		beats = 1
	}
	burst := uint64(beats) * cpb
	dataAt := casIssue + uint64(d.cfg.CASBus)*cpb
	firstData = dataAt
	if d.busFree > firstData {
		firstData = d.busFree // wait for the shared data bus
	}
	done = firstData + burst
	d.busFree = done
	// Column-command pipelining: the bank is busy only until the burst has
	// streamed out of its sense amps; the next CAS can then issue while the
	// data bus carries the tail of this burst.
	b.cmdReady = casIssue + burst
	return firstData, done
}

// NextEventAt supports the idle-cycle fast-forward: DRAM is lazily timed
// (accesses are fully scheduled at request time), so its only "event" is
// the shared data-bus occupancy horizon. Completion cycles that matter are
// already folded into the requesters' ready timestamps; the returned bound
// is defensive. A horizon at or before now imposes no bound.
func (d *DRAM) NextEventAt(now uint64) uint64 {
	if d.busFree > now {
		return d.busFree
	}
	return ^uint64(0)
}

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes the counters.
func (d *DRAM) ResetStats() { d.stats = Stats{} }
