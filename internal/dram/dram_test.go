package dram

import (
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	bad := []Config{
		{Banks: 0, RowBytes: 2048, CorePerBus: 5, BusBytes: 8},
		{Banks: 8, RowBytes: 0, CorePerBus: 5, BusBytes: 8},
		{Banks: 8, RowBytes: 2048, CorePerBus: 0, BusBytes: 8},
		{Banks: 8, RowBytes: 2048, CorePerBus: 5, BusBytes: 0},
		{Banks: 8, RowBytes: 2048, CorePerBus: 5, BusBytes: 8, CASBus: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(Default()); err != nil {
		t.Errorf("default rejected: %v", err)
	}
}

func TestRowEmptyThenHit(t *testing.T) {
	d := MustNew(Default())
	cfg := d.Config()
	cpb := uint64(cfg.CorePerBus)

	// First access: bank precharged -> RCD+CAS.
	first, done := d.Access(0, 0, 64)
	wantFirst := uint64(cfg.RCDBus+cfg.CASBus) * cpb
	if first != wantFirst {
		t.Errorf("empty-row first data at %d want %d", first, wantFirst)
	}
	beats := uint64(64 / cfg.BusBytes)
	if done != first+beats*cpb {
		t.Errorf("done %d want %d", done, first+beats*cpb)
	}

	// Second access to the same row after the bank is free: row hit -> CAS.
	start := done
	first2, _ := d.Access(start, 64, 64)
	if got := first2 - start; got != uint64(cfg.CASBus)*cpb {
		t.Errorf("row-hit latency %d want %d", got, uint64(cfg.CASBus)*cpb)
	}

	s := d.Stats()
	if s.Hits != 1 || s.Empties != 1 || s.Conflicts != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestRowConflict(t *testing.T) {
	d := MustNew(Default())
	cfg := d.Config()
	cpb := uint64(cfg.CorePerBus)
	rowStride := uint64(cfg.RowBytes * cfg.Banks) // same bank, next row

	_, done := d.Access(0, 0, 64)
	first, _ := d.Access(done, rowStride, 64)
	want := uint64(cfg.RPBus+cfg.RCDBus+cfg.CASBus) * cpb
	if got := first - done; got != want {
		t.Errorf("conflict latency %d want %d", got, want)
	}
	if d.Stats().Conflicts != 1 {
		t.Errorf("stats %+v", d.Stats())
	}
}

func TestBankColumnPipelining(t *testing.T) {
	d := MustNew(Default())
	cfg := d.Config()
	cpb := uint64(cfg.CorePerBus)
	burst := uint64(64/cfg.BusBytes) * cpb
	// Back-to-back row hits to the same bank stream at burst rate: CAS of
	// the second overlaps the first transfer.
	_, done1 := d.Access(0, 0, 64)
	_, done2 := d.Access(0, 64, 64)
	if done2 != done1+burst {
		t.Errorf("row-hit stream: done2=%d want %d (burst-rate pipelining)", done2, done1+burst)
	}
	if d.Stats().BusyCycles == 0 {
		t.Error("bank-command queueing not accounted")
	}
}

func TestBankParallelismSharedBus(t *testing.T) {
	d := MustNew(Default())
	cfg := d.Config()
	cpb := uint64(cfg.CorePerBus)
	burst := uint64(64/cfg.BusBytes) * cpb
	// Different banks overlap their row activations but share the data bus:
	// the second burst lands right behind the first.
	rowBytes := uint64(cfg.RowBytes)
	_, done1 := d.Access(0, 0, 64)
	first2, done2 := d.Access(0, rowBytes, 64) // next row -> next bank
	if first2 != done1 {
		t.Errorf("second bank's burst should queue on the data bus: first2=%d done1=%d", first2, done1)
	}
	if done2 != done1+burst {
		t.Errorf("done2=%d want %d", done2, done1+burst)
	}
	if d.Stats().BusyCycles != 0 {
		t.Error("no bank-command queueing expected across banks")
	}
}

func TestSmallBurst(t *testing.T) {
	d := MustNew(Default())
	first, done := d.Access(0, 0, 1)
	if done != first+uint64(d.Config().CorePerBus) {
		t.Errorf("1-byte burst should take one beat: first=%d done=%d", first, done)
	}
}

// Property: time never flows backwards, and outcomes partition accesses.
func TestQuickMonotonic(t *testing.T) {
	d := MustNew(Default())
	now := uint64(0)
	f := func(addrRaw uint32, advance uint16) bool {
		now += uint64(advance)
		addr := uint64(addrRaw)
		first, done := d.Access(now, addr, 64)
		if first < now || done <= first {
			return false
		}
		s := d.Stats()
		return s.Hits+s.Empties+s.Conflicts > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if RowHit.String() == "" || RowEmpty.String() == "" || RowConflict.String() == "" {
		t.Error("empty Kind strings")
	}
}

func TestResetStats(t *testing.T) {
	d := MustNew(Default())
	d.Access(0, 0, 64)
	d.ResetStats()
	if s := d.Stats(); s.Empties != 0 {
		t.Error("stats survived reset")
	}
}
