// Package prof is the shared -cpuprofile/-memprofile wiring for the
// command-line tools (authbench, authfuzz, authverify). It wraps
// runtime/pprof so every command exposes the same flags with the same
// semantics: the CPU profile covers the sweep itself, and the heap profile
// is snapshotted after a forced GC just before exit.
//
// The commands exit through os.Exit, which skips deferred calls, so Start
// returns an explicit stop function that the caller must invoke before
// exiting rather than deferring pprof.StopCPUProfile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into the file at path. An empty path is a
// no-op. The returned stop function flushes and closes the profile; it is
// never nil and is safe to call when profiling was not started.
func Start(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap snapshots the heap profile to the file at path after a forced
// garbage collection, so the profile reflects live objects rather than
// garbage awaiting collection. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
