package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartEmptyPathIsNoOp(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatalf("Start(\"\"): %v", err)
	}
	stop() // must be callable
	stop() // and idempotent
}

func TestStartWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	stop, err := Start(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("CPU profile file is empty")
	}
}

func TestStartRejectsBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof")); err == nil {
		t.Error("Start with uncreatable path: want error, got nil")
	}
}

func TestWriteHeap(t *testing.T) {
	if err := WriteHeap(""); err != nil {
		t.Fatalf("WriteHeap(\"\"): %v", err)
	}
	path := filepath.Join(t.TempDir(), "heap.prof")
	if err := WriteHeap(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("heap profile file is empty")
	}
	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "such", "dir", "heap.prof")); err == nil {
		t.Error("WriteHeap with uncreatable path: want error, got nil")
	}
}
