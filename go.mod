module authpoint

go 1.22
