package authpoint_test

import (
	"testing"

	"authpoint"
)

// The public API's quickstart path: assemble, run, tamper, detect.
func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := authpoint.Assemble(`
		_start:
			la   r1, x
			ld   r2, 0(r1)
			addi r2, r2, 1
			sd   r2, 0(r1)
			halt
		.data
		x: .word 41
	`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = authpoint.SchemeCommitPlusFetch
	m, err := authpoint.NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != authpoint.StopHalt {
		t.Fatalf("reason %v", res.Reason)
	}
	if got := m.Shadow.ReadUint(prog.Symbols["x"], 8); got != 42 {
		t.Fatalf("x = %d", got)
	}

	// Tampered run raises a security exception.
	m2, _ := authpoint.NewMachine(cfg, prog)
	m2.Memory.XorRange(prog.Symbols["x"], []byte{0xff})
	res2, _ := m2.Run()
	if res2.Reason != authpoint.StopSecurityFault {
		t.Fatalf("tampered run: %v", res2.Reason)
	}
}

func TestPublicAPIWorkloadCatalog(t *testing.T) {
	ws := authpoint.Workloads()
	if len(ws) != 18 {
		t.Fatalf("workloads %d", len(ws))
	}
	w, ok := authpoint.WorkloadByName("swimx")
	if !ok || !w.FP {
		t.Fatal("swimx lookup")
	}
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = authpoint.SchemeThenWrite
	meas, err := authpoint.Measure(authpoint.Spec{
		Workload: w, Config: cfg, WarmupInsts: 4_000, MeasureInsts: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if meas.IPC <= 0 {
		t.Fatalf("IPC %v", meas.IPC)
	}
}

func TestPublicAPIAttack(t *testing.T) {
	out, err := authpoint.PointerConversion(authpoint.PolicyThenCommit)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked || !out.Detected {
		t.Fatalf("outcome %v", out)
	}
	out, err = authpoint.PointerConversion(authpoint.PolicyThenIssue)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leaked {
		t.Fatalf("then-issue leaked: %v", out)
	}
}

func TestSchemesList(t *testing.T) {
	if len(authpoint.Schemes) != 7 {
		t.Fatalf("schemes %d", len(authpoint.Schemes))
	}
	params := authpoint.DefaultExperimentParams()
	if len(params.Workloads) != 18 {
		t.Fatalf("default params workloads %d", len(params.Workloads))
	}
	if len(authpoint.QuickExperimentParams().Workloads) >= len(params.Workloads) {
		t.Fatal("quick params should be a subset")
	}
}
