package authpoint_test

import (
	"fmt"

	"authpoint"
)

// Assemble a tiny program, run it on the paper's recommended configuration
// (authen-then-commit + authen-then-fetch), and read the result.
func Example() {
	prog, err := authpoint.Assemble(`
		_start:
			addi r1, r0, 6
			addi r2, r0, 7
			mul  r3, r1, r2
			out  r3, 0x10
			halt
	`)
	if err != nil {
		panic(err)
	}
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = authpoint.SchemeCommitPlusFetch
	m, err := authpoint.NewMachine(cfg, prog)
	if err != nil {
		panic(err)
	}
	res, err := m.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Reason, m.Core.OutLog()[0].Val)
	// Output: halt 42
}

// Tampering with ciphertext at rest is detected by the verification engine:
// the machine raises a security exception instead of running the altered
// instruction stream.
func ExampleMachine_tamperDetection() {
	prog, _ := authpoint.Assemble(`
		_start:
			addi r1, r0, 1
			halt
	`)
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = authpoint.SchemeThenCommit
	m, _ := authpoint.NewMachine(cfg, prog)
	m.Memory.XorRange(prog.TextBase, []byte{0x04}) // flip one ciphertext bit
	res, _ := m.Run()
	fmt.Println(res.Reason)
	// Output: security-fault
}

// The pointer-conversion exploit (paper §3.2.1) succeeds against
// authen-then-commit but not against authen-then-issue.
func ExamplePointerConversion() {
	weak, _ := authpoint.PointerConversion(authpoint.PolicyThenCommit)
	strong, _ := authpoint.PointerConversion(authpoint.PolicyThenIssue)
	fmt.Println("then-commit leaked:", weak.Leaked)
	fmt.Println("then-issue  leaked:", strong.Leaked)
	// Output:
	// then-commit leaked: true
	// then-issue  leaked: false
}

// Measure a workload's IPC under a scheme relative to the decrypt-only
// baseline.
func ExampleMeasure() {
	w, _ := authpoint.WorkloadByName("gapx")
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = authpoint.SchemeThenWrite
	meas, err := authpoint.Measure(authpoint.Spec{
		Workload: w, Config: cfg, WarmupInsts: 5_000, MeasureInsts: 20_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(meas.Insts, meas.IPC > 0)
	// Output: 20000 true
}
