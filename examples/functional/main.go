// Functional: develop and debug programs at interpreter speed, then measure
// them on the cycle-accurate secure machine. The functional machine is the
// same oracle the out-of-order core is differentially tested against, so
// architectural results always agree.
package main

import (
	"fmt"
	"log"
	"time"

	"authpoint"
)

const program = `
; Sieve of Eratosthenes over 4096 numbers; count primes.
_start:
	la   r1, flags
	li   r2, 4096
	addi r3, r0, 2       ; candidate
outer:
	slli r4, r3, 0
	add  r4, r3, r1
	lbu  r5, 0(r4)
	bne  r5, r0, next    ; already crossed out
	; cross out multiples
	add  r6, r3, r3
cross:
	bge  r6, r2, next
	add  r7, r6, r1
	addi r8, r0, 1
	sb   r8, 0(r7)
	add  r6, r6, r3
	b    cross
next:
	addi r3, r3, 1
	bne  r3, r2, outer
	; count primes
	addi r3, r0, 2
	addi r9, r0, 0
count:
	add  r4, r3, r1
	lbu  r5, 0(r4)
	bne  r5, r0, notprime
	addi r9, r9, 1
notprime:
	addi r3, r3, 1
	bne  r3, r2, count
	out  r9, 0x20
	halt
.data
flags: .space 4096
`

func main() {
	prog, err := authpoint.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: functional — instant architectural answer.
	f := authpoint.NewFunctional(prog)
	t0 := time.Now()
	f.Run(0)
	fmt.Printf("functional: %d primes below 4096, %d instructions in %v\n",
		f.Outs[0].Val, f.Insts, time.Since(t0).Round(time.Microsecond))

	// Phase 2: cycle-accurate on the secure machine.
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = authpoint.SchemeCommitPlusFetch
	m, err := authpoint.NewMachine(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timed:      %d primes, %d instructions, %d cycles (IPC %.3f) in %v\n",
		m.Core.OutLog()[0].Val, res.Insts, res.Cycles, res.IPC, time.Since(t0).Round(time.Millisecond))

	if m.Core.OutLog()[0].Val != f.Outs[0].Val {
		log.Fatal("functional and timed results disagree!")
	}
	fmt.Println("architectural results agree — the timing model changes when, never what.")
}
