// Quickstart: assemble a small program, run it on the secure processor
// under two authentication control points, and show both the performance
// and the tamper-detection behaviour.
package main

import (
	"fmt"
	"log"

	"authpoint"
)

const program = `
; Compute the dot product of two small vectors, store the result, and emit
; it to an I/O port.
_start:
	la   r1, a
	la   r2, b
	li   r3, 16          ; elements
	fadd f6, f7, f7      ; acc = 0 (f7 is never written: reads as 0)
loop:
	fld  f1, 0(r1)
	fld  f2, 0(r2)
	fmul f3, f1, f2
	fadd f6, f6, f3
	addi r1, r1, 8
	addi r2, r2, 8
	addi r3, r3, -1
	bne  r3, r0, loop
	la   r4, result
	fsd  f6, 0(r4)
	fcvtfi r5, f6
	out  r5, 0x10
	halt
.data
a:      .float 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
b:      .float 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2
result: .float 0
`

func main() {
	prog, err := authpoint.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Run under the paper's recommended secure point and under the
	// conservative one; every memory line the program touches is decrypted
	// with real AES counter mode and verified with real HMAC-SHA256.
	for _, scheme := range []authpoint.Scheme{
		authpoint.SchemeThenCommit,
		authpoint.SchemeThenIssue,
	} {
		m, err := authpoint.NewMachine(configFor(scheme), prog)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s: %v after %d cycles (IPC %.3f), dot product = %d\n",
			scheme, res.Reason, res.Cycles, res.IPC, m.Core.OutLog()[0].Val)
	}

	// Now the point of the whole architecture: flip one bit of ciphertext
	// in external memory and run again.
	m, err := authpoint.NewMachine(configFor(authpoint.SchemeThenCommit), prog)
	if err != nil {
		log.Fatal(err)
	}
	m.Memory.XorRange(prog.DataBase, []byte{0x01}) // tamper vector a[0]
	res, _ := m.Run()
	fmt.Printf("%-20s: %v", "tampered run", res.Reason)
	if res.SecurityFault != nil {
		fmt.Printf(" (line %#x flagged by the verification engine at cycle %d)",
			res.SecurityFault.Addr, res.SecurityFault.Cycle)
	}
	fmt.Println()
}

func configFor(s authpoint.Scheme) authpoint.Config {
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = s
	return cfg
}
