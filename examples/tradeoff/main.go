// Tradeoff: the paper's design-space question as a library call. For a
// memory-bound workload, measure every authentication control point's
// normalized IPC and cross it with the security properties the exploit
// suite demonstrates — reproducing the paper's conclusion that
// then-commit + then-fetch is the secure point with the mildest cost.
package main

import (
	"fmt"
	"log"

	"authpoint"
)

func main() {
	w, ok := authpoint.WorkloadByName("gzipx")
	if !ok {
		log.Fatal("workload catalog missing gzipx")
	}
	fmt.Printf("workload: %s (synthetic analogue; LZ hash-chain probes, value-dependent)\n\n", w.Name)

	// Baseline: decryption only.
	base := authpoint.DefaultConfig()
	base.Policy = authpoint.PolicyBaseline
	mb, err := authpoint.Measure(authpoint.Spec{
		Workload: w, Config: base, WarmupInsts: 20_000, MeasureInsts: 80_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-32s %10s %12s %14s\n", "policy", "IPC", "vs baseline", "stops leaks?")
	fmt.Printf("%-32s %10.4f %12s %14s\n", "baseline (no auth)", mb.IPC, "1.000", "no")
	for _, s := range []authpoint.ControlPoint{
		authpoint.PolicyThenWrite,
		authpoint.PolicyThenCommit,
		authpoint.PolicyThenFetch,
		authpoint.PolicyCommitPlusFetch,
		authpoint.PolicyThenIssue,
		authpoint.PolicyCommitPlusObfuscation,
	} {
		cfg := authpoint.DefaultConfig()
		cfg.Policy = s
		m, err := authpoint.Measure(authpoint.Spec{
			Workload: w, Config: cfg, WarmupInsts: 20_000, MeasureInsts: 80_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Security column demonstrated, not asserted: run the pointer
		// conversion exploit against this scheme.
		pc, err := authpoint.PointerConversion(s)
		if err != nil {
			log.Fatal(err)
		}
		stops := "no"
		if !pc.Leaked {
			stops = "yes"
		}
		fmt.Printf("%-32s %10.4f %12.3f %14s\n", s, m.IPC, m.IPC/mb.IPC, stops)
	}

	fmt.Println("\nThe paper's recommendation falls out of the table: authen-then-commit +")
	fmt.Println("authen-then-fetch is the cheapest point that both stops active fetch-address")
	fmt.Println("disclosure and keeps precise security exceptions.")
}
