// Sidechannel: the paper's motivating scenario end to end. A fielded device
// holds an address-like secret (say, the location of a key schedule) inside
// an encrypted, integrity-protected memory image. An adversary with probes
// on the memory bus cannot read the secret — but can flip ciphertext bits.
//
// This example mounts the pointer-conversion exploit (§3.2.1) and the
// injected disclosing kernel with shift windows (§3.2.3 + §3.3.1) against
// every authentication control point, and prints what the adversary walks
// away with. Only the gates the paper identifies as sufficient —
// authen-then-issue and then-commit+then-fetch — keep the secret.
package main

import (
	"fmt"
	"log"

	"authpoint"
)

func main() {
	points := []authpoint.ControlPoint{
		authpoint.PolicyBaseline,
		authpoint.PolicyThenWrite,
		authpoint.PolicyThenCommit,
		authpoint.PolicyThenIssue,
		authpoint.PolicyCommitPlusFetch,
		authpoint.PolicyCommitPlusObfuscation,
	}

	fmt.Println("Pointer conversion (linked-list attack): NULL terminator -> pointer at secret")
	fmt.Println("The dereference's fetch address IS the secret, if it ever reaches the bus.")
	for _, s := range points {
		out, err := authpoint.PointerConversion(s)
		if err != nil {
			log.Fatal(err)
		}
		report(s, out)
	}

	fmt.Println()
	fmt.Println("Disclosing kernel (code injection + shift window): 6 bits per run through")
	fmt.Println("the page-offset bits of a probe fetch; 11 runs reassemble a 64-bit secret.")
	for _, s := range points {
		out, err := authpoint.DisclosingKernel(s)
		if err != nil {
			log.Fatal(err)
		}
		report(s, out)
	}
}

func report(s authpoint.ControlPoint, out authpoint.AttackOutcome) {
	status := "secret safe"
	if out.Leaked {
		status = fmt.Sprintf("ADVERSARY RECOVERED %#x (%d bits in %d run(s))",
			out.Recovered, out.RecoveredBits, out.Runs)
	}
	detection := "tampering was never noticed"
	if out.Detected {
		detection = "security exception raised"
	}
	fmt.Printf("  %-32s %-52s [%s]\n", s, status, detection)
}
