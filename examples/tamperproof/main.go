// Tamperproof: the trusted-computing scenario from the paper's
// introduction. A device runs licensed firmware from an encrypted,
// authenticated memory image. This example shows the three layers of the
// protection actually working on real ciphertext:
//
//  1. privacy   — the firmware's bytes at rest are indistinguishable from
//     noise (real AES-256 counter mode);
//  2. integrity — any ciphertext bit-flip is caught by the verification
//     engine before it can change architectural state;
//  3. freshness — replaying a stale (validly MACed) line is caught because
//     MACs cover the per-line write counters, and the MAC-tree mode extends
//     that to whole-memory freshness.
package main

import (
	"bytes"
	"fmt"
	"log"

	"authpoint"
)

const firmware = `
; Firmware main loop: read a "sensor", update a running checksum, write it
; to the telemetry port, repeat a few times, then power down.
_start:
	la   r1, sensor
	la   r2, state
	li   r3, 8
loop:
	ld   r4, 0(r1)
	add  r4, r4, r3      ; mix the iteration count in
	ld   r5, 0(r2)
	xor  r5, r5, r4
	slli r6, r5, 13
	xor  r5, r5, r6
	sd   r5, 0(r2)
	addi r3, r3, -1
	bne  r3, r0, loop
	out  r5, 0x7e
	halt
.data
sensor: .word 0x5eed
state:  .word 0
`

func main() {
	prog, err := authpoint.Assemble(firmware)
	if err != nil {
		log.Fatal(err)
	}
	cfg := authpoint.DefaultConfig()
	cfg.Scheme = authpoint.SchemeCommitPlusFetch

	// 1. Privacy: what an adversary dumping the DIMMs sees.
	m, err := authpoint.NewMachine(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	plain := prog.TextBytes()
	atRest := m.Memory.Read(prog.TextBase, len(plain))
	fmt.Printf("firmware text, plaintext first 16 bytes: % x\n", plain[:16])
	fmt.Printf("firmware text, ciphertext at rest:       % x\n", atRest[:16])
	if bytes.Equal(plain[:16], atRest[:16]) {
		log.Fatal("plaintext visible in external memory!")
	}

	// The untampered run works.
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclean run: %v, telemetry=%#x\n", res.Reason, m.Core.OutLog()[0].Val)

	// 2. Integrity: one flipped ciphertext bit in the firmware.
	m2, _ := authpoint.NewMachine(cfg, prog)
	m2.Memory.XorRange(prog.TextBase+8, []byte{0x20})
	res2, _ := m2.Run()
	fmt.Printf("bit-flipped firmware: %v", res2.Reason)
	if res2.SecurityFault != nil {
		fmt.Printf(" — engine flagged line %#x\n", res2.SecurityFault.Addr)
	} else {
		fmt.Println(" — NOT DETECTED (this must not happen)")
	}

	// 3. Freshness: record the sensor line's ciphertext AND its MAC, let
	// the firmware overwrite state, then splice the stale pair back in.
	m3, _ := authpoint.NewMachine(cfg, prog)
	stateLine := m3.Prog.Symbols["state"] &^ 63
	oldCT := m3.Memory.Snapshot(stateLine, 64)
	// Run once so the state line is written back with a bumped counter.
	if _, err := m3.Ctrl.WriteBack(0, stateLine, make([]byte, 64)); err != nil {
		log.Fatal(err)
	}
	m3.Memory.Write(stateLine, oldCT) // replay stale ciphertext
	fres, err := m3.Ctrl.Fetch(1000, stateLine, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed stale line: verified=%v (MACs cover write counters)\n", fres.AuthOK)
	if fres.AuthOK {
		log.Fatal("replay accepted!")
	}
}
