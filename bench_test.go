// Benchmarks that regenerate the paper's tables and figures. Each benchmark
// drives the same experiment code as cmd/authbench, on the quick workload
// subset so `go test -bench=.` terminates in minutes; run cmd/authbench for
// the full 18-workload sweeps. Custom metrics report the figures' headline
// numbers (mean normalized IPC per scheme, speedups over then-issue,
// recovered secret bits) so the benchmark output itself reads like the
// paper's evaluation.
package authpoint_test

import (
	"fmt"
	"runtime"
	"testing"

	"authpoint"
	"authpoint/internal/experiments"
	"authpoint/internal/harness"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// quick returns the benchmark harness's own sweep parameters: a 4-kernel
// subset at short windows, so `go test -bench=.` regenerates every figure's
// shape in minutes. cmd/authbench runs the full 18-kernel versions.
func quick() experiments.Params {
	p := experiments.QuickParams()
	p.Workloads = p.Workloads[:4] // mcfx, twolfx, gccx, swimx
	p.Warmup, p.Measure = 8_000, 25_000
	return p
}

// BenchmarkTable1LatencyGap regenerates Table 1: the decrypt/verify latency
// gap under [counter mode + HMAC] vs [CBC + CBC-MAC].
func BenchmarkTable1LatencyGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].Gap), "ctr+hmac-gap-cycles")
			b.ReportMetric(float64(rows[1].Gap), "cbc-first-chunk-gap-cycles")
		}
	}
}

// BenchmarkTable2SecurityMatrix regenerates Table 2 by running the exploit
// suite against every scheme.
func BenchmarkTable2SecurityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			secure := 0
			for _, r := range rows {
				if r.PreventsFetchLeak {
					secure++
				}
			}
			b.ReportMetric(float64(secure), "schemes-preventing-fetch-leak")
		}
	}
}

// BenchmarkFig6DependentFetch regenerates the Figure 6 timeline comparison.
func BenchmarkFig6DependentFetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].SecondMinus1), "then-issue-fetch-gap")
			b.ReportMetric(float64(rows[1].SecondMinus1), "then-fetch-fetch-gap")
		}
	}
}

func reportSweep(b *testing.B, sw *experiments.Sweep) {
	b.Helper()
	for _, s := range sw.Policies {
		b.ReportMetric(sw.MeanNormalized(s), "nIPC/"+short(s))
	}
}

func short(p policy.ControlPoint) string {
	switch p {
	case policy.ThenIssue:
		return "issue"
	case policy.ThenWrite:
		return "write"
	case policy.ThenCommit:
		return "commit"
	case policy.ThenFetch:
		return "fetch"
	case policy.CommitPlusFetch:
		return "c+f"
	case policy.CommitPlusObfuscation:
		return "c+obf"
	}
	return p.String()
}

// BenchmarkFig7NormalizedIPC regenerates the Figure 7 family (normalized
// IPC of the six schemes) for both L2 sizes on the quick subset.
func BenchmarkFig7NormalizedIPC(b *testing.B) {
	for _, l2 := range []struct {
		name string
		size int
		lat  int
	}{{"256KB", 256 << 10, 4}, {"1MB", 1 << 20, 8}} {
		b.Run(l2.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := quick()
				sw, err := experiments.RunSweep("fig7", p, experiments.PerfPolicies,
					func(c *sim.Config) { c.Mem.L2B = l2.size; c.Mem.L2Lat = l2.lat })
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					reportSweep(b, sw)
				}
			}
		})
	}
}

// BenchmarkFig8Speedups regenerates Figure 8: IPC speedups over
// authen-then-issue at 256KB L2.
func BenchmarkFig8Speedups(b *testing.B) {
	schemes := []policy.ControlPoint{policy.ThenIssue, policy.ThenWrite, policy.ThenCommit, policy.CommitPlusFetch}
	for i := 0; i < b.N; i++ {
		sw, err := experiments.RunSweep("fig8", quick(), schemes, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rows := sw.Speedups(schemes[1:])
			for _, s := range schemes[1:] {
				sum := 0.0
				for _, r := range rows {
					sum += r.Speedup[s]
				}
				b.ReportMetric(sum/float64(len(rows)), "speedup/"+short(s))
			}
		}
	}
}

// BenchmarkFig9RemapCache regenerates Figure 9: normalized IPC of
// obfuscation+commit across re-map cache sizes.
func BenchmarkFig9RemapCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9(quick(), []int{64 << 10, 256 << 10, 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range pts {
				b.ReportMetric(pt.Mean, fmt.Sprintf("nIPC/%dKB", pt.RemapCacheB>>10))
			}
		}
	}
}

// BenchmarkFig10SmallRUU regenerates Figures 10/11: the 64-entry RUU study.
func BenchmarkFig10SmallRUU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := experiments.Fig10(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSweep(b, sw)
		}
	}
}

// BenchmarkFig12MACTree regenerates Figures 12/13: MAC-tree authentication.
func BenchmarkFig12MACTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := experiments.Fig12(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSweep(b, sw)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// cycles per wall second) — the practical cost of using this library.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, ok := authpoint.WorkloadByName("swimx")
	if !ok {
		b.Fatal("missing workload")
	}
	prog, err := authpoint.Assemble(w.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := authpoint.DefaultConfig()
		cfg.Scheme = authpoint.SchemeThenCommit
		cfg.MaxInsts = 50_000
		m, err := authpoint.NewMachine(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// benchSim runs the BenchmarkSimulatorThroughput configuration with an
// optional observability hub attached.
func benchSim(b *testing.B, attach func(*sim.Machine)) {
	b.Helper()
	w, ok := authpoint.WorkloadByName("swimx")
	if !ok {
		b.Fatal("missing workload")
	}
	prog, err := authpoint.Assemble(w.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Scheme = sim.SchemeThenCommit
		cfg.MaxInsts = 50_000
		m, err := sim.NewMachine(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		if attach != nil {
			attach(m)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimTraceOff pins the cost of the observability instrumentation
// with no sink attached — one nil check per event site. Its sim-cycles/s
// must track BenchmarkSimulatorThroughput (the pre-instrumentation shape)
// within noise; a regression here means the disabled-path guarantee broke.
func BenchmarkSimTraceOff(b *testing.B) {
	benchSim(b, nil)
}

// BenchmarkSimTraceOn measures the same run with the full hub attached
// (ring tracer + metrics) — the price of turning observability on.
func BenchmarkSimTraceOn(b *testing.B) {
	benchSim(b, func(m *sim.Machine) {
		m.SetObserver(obs.NewHub(obs.NewTracer(0), true))
	})
}

// BenchmarkSweepParallelism runs the same quick sweep on a one-worker pool
// and on a NumCPU-sized pool. Each iteration uses a fresh Runner so the
// baseline memo and image cache start cold; the comparison isolates the
// worker-pool fan-out itself.
func BenchmarkSweepParallelism(b *testing.B) {
	for _, pool := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", runtime.NumCPU()}} {
		b.Run(pool.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := quick()
				p.Runner = &harness.Runner{Parallelism: pool.workers}
				sw, err := experiments.RunSweep("parallelism", p, experiments.PerfPolicies, nil)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					reportSweep(b, sw)
				}
			}
		})
	}
}
