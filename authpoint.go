// Package authpoint is a cycle-level secure-processor simulator that
// reproduces "Authentication Control Point and Its Implications For Secure
// Processor Design" (Shi & Lee, MICRO 2006).
//
// The library models an 8-wide out-of-order processor whose external memory
// is encrypted (counter mode over a from-scratch AES) and integrity-protected
// (truncated HMAC-SHA256 per line, optionally a CHTree-style MAC tree), with
// a front-side bus whose address trace is the adversary-visible side channel.
// The paper's design space — where completed integrity verification must
// gate execution — is expressed as a ControlPoint: a composition of
// orthogonal gate dimensions (issue, write, commit, fetch, obfuscation).
// The canonical points are re-exported here:
//
//	PolicyBaseline              decryption only (normalization baseline)
//	PolicyAuthOnly              authenticate, gate nothing
//	PolicyThenIssue             authen-then-issue
//	PolicyThenWrite             authen-then-write
//	PolicyThenCommit            authen-then-commit
//	PolicyThenFetch             authen-then-fetch (LastRequest variant)
//	PolicyCommitPlusFetch       authen-then-commit+fetch
//	PolicyCommitPlusObfuscation authen-then-commit+obfuscation
//
// Arbitrary lattice points compose with ComposePolicy or parse from their
// canonical names ("authen-then-issue+obfuscation") with ParsePolicy. The
// legacy Scheme enum remains as a deprecated shim over the same layer.
//
// Quick start:
//
//	prog, _ := authpoint.Assemble(src)       // assemble a program
//	cfg := authpoint.DefaultConfig()          // Table 3 machine
//	cfg.Policy = authpoint.PolicyThenCommit
//	m, _ := authpoint.NewMachine(cfg, prog)
//	res, _ := m.Run()
//	fmt.Println(res.IPC, res.Reason)
//
// The workload catalog (18 synthetic SPEC2000 analogues), the measurement
// harness, the exploit suite of Section 3, and the per-figure experiment
// drivers are re-exported below; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package authpoint

import (
	"authpoint/internal/asm"
	"authpoint/internal/attack"
	"authpoint/internal/experiments"
	"authpoint/internal/harness"
	"authpoint/internal/interp"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// Core simulation types.
type (
	// Config is the full machine configuration (pipeline, caches, DRAM,
	// bus, crypto engines, control point).
	Config = sim.Config
	// ControlPoint is a composable authentication control point: the policy
	// layer's value type (orthogonal gate dimensions, lattice-composable).
	ControlPoint = policy.ControlPoint
	// Scheme selects the authentication control point.
	//
	// Deprecated: Scheme is a closed enum kept for compatibility; new code
	// should set Config.Policy to a ControlPoint.
	Scheme = sim.Scheme
	// Machine is an assembled secure-processor system.
	Machine = sim.Machine
	// Result summarizes a run.
	Result = sim.Result
	// StopReason says why a run ended.
	StopReason = sim.StopReason
	// Region is an extra protected+mapped address range.
	Region = sim.Region
	// Program is an assembled binary image.
	Program = asm.Program
)

// Authentication control points (Section 4.2/4.3 of the paper).
const (
	SchemeBaseline              = sim.SchemeBaseline
	SchemeThenIssue             = sim.SchemeThenIssue
	SchemeThenWrite             = sim.SchemeThenWrite
	SchemeThenCommit            = sim.SchemeThenCommit
	SchemeThenFetch             = sim.SchemeThenFetch
	SchemeCommitPlusFetch       = sim.SchemeCommitPlusFetch
	SchemeCommitPlusObfuscation = sim.SchemeCommitPlusObfuscation
)

// Stop reasons.
const (
	StopHalt          = sim.StopHalt
	StopMaxInsts      = sim.StopMaxInsts
	StopSecurityFault = sim.StopSecurityFault
	StopArchFault     = sim.StopArchFault
	StopWatchdog      = sim.StopWatchdog
)

// Canonical control points (Section 4.2/4.3 of the paper, policy layer).
var (
	PolicyBaseline              = policy.Baseline
	PolicyAuthOnly              = policy.AuthOnly
	PolicyThenIssue             = policy.ThenIssue
	PolicyThenWrite             = policy.ThenWrite
	PolicyThenCommit            = policy.ThenCommit
	PolicyThenFetch             = policy.ThenFetch
	PolicyCommitPlusFetch       = policy.CommitPlusFetch
	PolicyCommitPlusObfuscation = policy.CommitPlusObfuscation
)

// ParsePolicy resolves a canonical or composed control-point name
// ("authen-then-commit", "authen-then-issue+obfuscation", legacy aliases like
// "commit+fetch") to its lattice point.
func ParsePolicy(name string) (ControlPoint, error) { return policy.Parse(name) }

// ComposePolicy joins two lattice points: the result gates at the union of
// both compositions' dimensions.
func ComposePolicy(a, b ControlPoint) ControlPoint { return policy.Compose(a, b) }

// Policies lists every registered canonical control point in registration
// order.
func Policies() []ControlPoint {
	var out []ControlPoint
	for _, e := range policy.Registered() {
		out = append(out, e.Point)
	}
	return out
}

// Schemes lists every scheme in presentation order.
//
// Deprecated: use Policies.
var Schemes = sim.Schemes

// ParseScheme resolves a name to the legacy Scheme enum.
//
// Deprecated: use ParsePolicy, which also accepts composed lattice points.
func ParseScheme(name string) (Scheme, error) { return sim.ParseScheme(name) }

// DefaultConfig returns the paper's Table 3 machine (256KB L2, 128-entry
// RUU, 80ns decrypt, 74ns MAC), baseline scheme.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Assemble assembles authpoint assembly into a Program.
func Assemble(source string) (*Program, error) { return asm.Assemble(source) }

// NewMachine builds a machine and loads the program.
func NewMachine(cfg Config, p *Program) (*Machine, error) { return sim.NewMachine(cfg, p) }

// NewMachineWithRegions is NewMachine plus extra protected regions (e.g.
// probe windows for side-channel experiments).
func NewMachineWithRegions(cfg Config, p *Program, extra []Region) (*Machine, error) {
	return sim.NewMachineWithRegions(cfg, p, extra)
}

// Workload types and catalog.
type (
	// Workload is one synthetic benchmark kernel.
	Workload = workload.Workload
)

// Workloads returns the 18 synthetic SPEC2000-analogue kernels (9 INT + 9 FP).
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks a kernel up by name (e.g. "mcfx").
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// Measurement harness.
type (
	// Spec describes one measured run (workload, config, windows).
	Spec = harness.Spec
	// Measurement is a measured-window result.
	Measurement = harness.Measurement
)

// Measure runs one warmup+measure simulation.
func Measure(spec Spec) (Measurement, error) { return harness.Measure(spec) }

// Exploit suite (Section 3).
type (
	// AttackOutcome reports one exploit attempt.
	AttackOutcome = attack.Outcome
)

// PointerConversion runs the linked-list pointer-conversion exploit (§3.2.1).
func PointerConversion(p ControlPoint) (AttackOutcome, error) { return attack.PointerConversion(p) }

// BinarySearch runs the comparison-constant binary-search exploit (§3.2.2).
func BinarySearch(p ControlPoint) (AttackOutcome, error) { return attack.BinarySearch(p) }

// DisclosingKernel runs the code-injection shift-window exploit (§3.2.3+§3.3.1).
func DisclosingKernel(p ControlPoint) (AttackOutcome, error) { return attack.DisclosingKernel(p) }

// IOPortDisclosure runs the I/O-port disclosing kernel (§3.2.3).
func IOPortDisclosure(p ControlPoint) (AttackOutcome, error) { return attack.IOPortDisclosure(p) }

// MemoryTaint checks whether unverified data can contaminate external memory.
func MemoryTaint(p ControlPoint) (AttackOutcome, error) { return attack.MemoryTaint(p) }

// BruteForcePage runs random page-address tampering (§3.3.2).
func BruteForcePage(p ControlPoint, trials int) (leaks, faults int, err error) {
	return attack.BruteForcePage(p, trials)
}

// PassiveOutcome reports the no-tampering control-flow reconstruction attack.
type PassiveOutcome = attack.PassiveOutcome

// PassiveControlFlow runs the §3.1 natural-execution side channel: the
// victim is untampered; its secret-dependent control flow is reconstructed
// from the fetch-address trace. Only address obfuscation closes this channel.
func PassiveControlFlow(p ControlPoint) (PassiveOutcome, error) {
	return attack.PassiveControlFlow(p)
}

// Functional (untimed) execution.
type (
	// Functional is the in-order instruction-set simulator: no pipeline, no
	// caches, no crypto — architectural semantics at millions of
	// instructions per second. It doubles as the oracle the timing core is
	// differentially tested against.
	Functional = interp.Machine
)

// NewFunctional builds a functional machine for a program (same memory
// layout as NewMachine).
func NewFunctional(p *Program) *Functional { return interp.New(p) }

// Experiment drivers (every table and figure of the evaluation).
type (
	// ExperimentParams sets sweep sizes and the workload subset.
	ExperimentParams = experiments.Params
	// Sweep is a normalized-IPC experiment result (Figure 7/10/12 family).
	Sweep = experiments.Sweep
)

// DefaultExperimentParams covers all 18 kernels at default windows.
func DefaultExperimentParams() ExperimentParams { return experiments.DefaultParams() }

// QuickExperimentParams is a fast subset for smoke runs.
func QuickExperimentParams() ExperimentParams { return experiments.QuickParams() }
